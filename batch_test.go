package maskfrac

import (
	"context"
	"errors"
	"testing"
)

func TestFractureBatch(t *testing.T) {
	targets := []Polygon{
		square(70),
		square(90),
		{{X: 0, Y: 0}, {X: 1, Y: 1}}, // invalid shape
		square(60),
	}
	items := FractureBatch(targets, DefaultParams(), MethodProtoEDA, nil, 2)
	if len(items) != 4 {
		t.Fatalf("items = %d", len(items))
	}
	for i, it := range items {
		if it.Index != i {
			t.Errorf("item %d has index %d", i, it.Index)
		}
	}
	if items[2].Err == nil {
		t.Error("invalid shape produced no error")
	}
	for _, i := range []int{0, 1, 3} {
		if items[i].Err != nil {
			t.Errorf("shape %d failed: %v", i, items[i].Err)
		}
		if items[i].Result.ShotCount() == 0 {
			t.Errorf("shape %d has no shots", i)
		}
	}
	s := Summarize(items)
	if s.Shapes != 4 || s.Errors != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.Shots == 0 || s.Feasible == 0 {
		t.Errorf("summary totals empty: %+v", s)
	}
}

func TestFractureBatchMatchesSerial(t *testing.T) {
	targets := []Polygon{square(70), square(90)}
	params := DefaultParams()
	items := FractureBatch(targets, params, MethodProtoEDA, nil, 0)
	for i, target := range targets {
		prob, err := NewProblem(target, params)
		if err != nil {
			t.Fatal(err)
		}
		want, err := prob.Fracture(MethodProtoEDA, nil)
		if err != nil {
			t.Fatal(err)
		}
		if items[i].Result.ShotCount() != want.ShotCount() {
			t.Errorf("shape %d: batch %d shots vs serial %d", i, items[i].Result.ShotCount(), want.ShotCount())
		}
	}
}

func TestFractureBatchWorkersExceedShapes(t *testing.T) {
	items := FractureBatch([]Polygon{square(60)}, DefaultParams(), MethodGSC, nil, 32)
	if len(items) != 1 || items[0].Err != nil {
		t.Fatalf("items = %+v", items)
	}
}

func TestFractureBatchCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before dispatch: every item must carry ctx.Err()
	targets := []Polygon{square(60), square(70), square(80)}
	items := FractureBatchCtx(ctx, targets, DefaultParams(), MethodProtoEDA, nil, 2)
	if len(items) != 3 {
		t.Fatalf("items = %d", len(items))
	}
	for i, it := range items {
		if it.Index != i {
			t.Errorf("item %d has index %d", i, it.Index)
		}
		if !errors.Is(it.Err, context.Canceled) {
			t.Errorf("item %d: err = %v, want context.Canceled", i, it.Err)
		}
	}
}

func TestFractureBatchCtxCancelMidway(t *testing.T) {
	// cancel after the first shape completes; later shapes must carry
	// ctx.Err() while earlier results stay intact
	ctx, cancel := context.WithCancel(context.Background())
	targets := make([]Polygon, 12)
	for i := range targets {
		targets[i] = square(60 + float64(i))
	}
	// a single worker serializes the batch, so cancelling early leaves
	// most shapes undispatched
	done := make(chan []BatchItem)
	go func() {
		done <- FractureBatchCached(ctx, targets, DefaultParams(), MethodProtoEDA, nil, 1, nil)
	}()
	cancel()
	items := <-done
	var sawCancel bool
	for i, it := range items {
		if it.Err != nil {
			if !errors.Is(it.Err, context.Canceled) {
				t.Errorf("item %d: err = %v", i, it.Err)
			}
			sawCancel = true
		} else if it.Result == nil {
			t.Errorf("item %d has neither result nor error", i)
		}
	}
	if !sawCancel {
		t.Skip("batch finished before cancellation took effect")
	}
}

func TestFractureBatchErrorPaths(t *testing.T) {
	// a batch mixing valid shapes and a degenerate polygon returns
	// per-item errors in input order without poisoning siblings
	targets := []Polygon{
		square(70),
		{{X: 0, Y: 0}, {X: 5, Y: 5}}, // degenerate: < 3 vertices
		square(90),
	}
	items := FractureBatch(targets, DefaultParams(), MethodProtoEDA, nil, 3)
	if items[1].Err == nil {
		t.Error("degenerate polygon produced no error")
	}
	for _, i := range []int{0, 2} {
		if items[i].Err != nil {
			t.Errorf("sibling %d poisoned: %v", i, items[i].Err)
		}
		if items[i].Index != i || items[i].Result.ShotCount() == 0 {
			t.Errorf("sibling %d: index %d, %v", i, items[i].Index, items[i].Result)
		}
	}

	// an unknown method errors on every item, in input order
	items = FractureBatch([]Polygon{square(60), square(80)}, DefaultParams(), Method("bogus"), nil, 2)
	for i, it := range items {
		if it.Err == nil {
			t.Errorf("item %d: unknown method produced no error", i)
		}
		if it.Index != i {
			t.Errorf("item %d has index %d", i, it.Index)
		}
	}
}
