package maskfrac

import "testing"

func TestFractureBatch(t *testing.T) {
	targets := []Polygon{
		square(70),
		square(90),
		{{X: 0, Y: 0}, {X: 1, Y: 1}}, // invalid shape
		square(60),
	}
	items := FractureBatch(targets, DefaultParams(), MethodProtoEDA, nil, 2)
	if len(items) != 4 {
		t.Fatalf("items = %d", len(items))
	}
	for i, it := range items {
		if it.Index != i {
			t.Errorf("item %d has index %d", i, it.Index)
		}
	}
	if items[2].Err == nil {
		t.Error("invalid shape produced no error")
	}
	for _, i := range []int{0, 1, 3} {
		if items[i].Err != nil {
			t.Errorf("shape %d failed: %v", i, items[i].Err)
		}
		if items[i].Result.ShotCount() == 0 {
			t.Errorf("shape %d has no shots", i)
		}
	}
	s := Summarize(items)
	if s.Shapes != 4 || s.Errors != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.Shots == 0 || s.Feasible == 0 {
		t.Errorf("summary totals empty: %+v", s)
	}
}

func TestFractureBatchMatchesSerial(t *testing.T) {
	targets := []Polygon{square(70), square(90)}
	params := DefaultParams()
	items := FractureBatch(targets, params, MethodProtoEDA, nil, 0)
	for i, target := range targets {
		prob, err := NewProblem(target, params)
		if err != nil {
			t.Fatal(err)
		}
		want, err := prob.Fracture(MethodProtoEDA, nil)
		if err != nil {
			t.Fatal(err)
		}
		if items[i].Result.ShotCount() != want.ShotCount() {
			t.Errorf("shape %d: batch %d shots vs serial %d", i, items[i].Result.ShotCount(), want.ShotCount())
		}
	}
}

func TestFractureBatchWorkersExceedShapes(t *testing.T) {
	items := FractureBatch([]Polygon{square(60)}, DefaultParams(), MethodGSC, nil, 32)
	if len(items) != 1 || items[0].Err != nil {
		t.Fatalf("items = %+v", items)
	}
}
