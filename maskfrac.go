// Package maskfrac is a model-based mask fracturing library: it covers
// mask target shapes with minimal sets of overlapping variable-shaped
// e-beam shots while compensating the e-beam proximity effect, so that
// the printed dose satisfies CD constraints everywhere.
//
// It reproduces "Effective Model-Based Mask Fracturing for Mask Cost
// Reduction" (Kagalwalla & Gupta, DAC 2015): the paper's graph-coloring
// + iterative-refinement method, the GSC / MP / PROTO-EDA baselines it
// benchmarks against, conventional rectilinear partition fracturing,
// benchmark shape generators, shot-count bounds, a mask write cost
// model, and the experiment harness regenerating the paper's tables.
//
// Quick start:
//
//	target := maskfrac.Polygon{{0, 0}, {100, 0}, {100, 100}, {0, 100}}
//	prob, err := maskfrac.NewProblem(target, maskfrac.DefaultParams())
//	res, err := prob.Fracture(maskfrac.MethodMBF, nil)
//	// res.Shots is the e-beam shot list; res.Feasible() reports CD cleanliness.
package maskfrac

import (
	"context"
	"fmt"
	"time"

	"maskfrac/internal/bounds"
	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/engine"
	"maskfrac/internal/fracture/mbf"
	"maskfrac/internal/geom"
	"maskfrac/internal/graphx"
	"maskfrac/internal/shapegen"
	"maskfrac/internal/telemetry"

	// the solver packages register themselves with the engine's method
	// registry in their package init; mbf is imported above for its
	// stage statistics type
	_ "maskfrac/internal/fracture/gsc"
	_ "maskfrac/internal/fracture/lshape"
	_ "maskfrac/internal/fracture/mp"
	_ "maskfrac/internal/fracture/partition"
	_ "maskfrac/internal/fracture/protoeda"
)

// Point is a planar point in nanometers.
type Point = geom.Point

// Shot is an axis-parallel rectangular e-beam shot, in nanometers.
type Shot = geom.Rect

// Polygon is a mask target shape: a simple polygon without a repeated
// closing vertex. ILT shapes are polygons with many short segments.
type Polygon = geom.Polygon

// Params are the fracturing parameters (blur σ, CD tolerance γ, dose
// threshold ρ, pixel size Δp and minimum shot size Lmin).
type Params = cover.Params

// DefaultParams returns the parameter set of the paper's experiments:
// σ = 6.25 nm, γ = 2 nm, ρ = 0.5, Δp = 1 nm, Lmin = 8 nm.
func DefaultParams() Params { return cover.DefaultParams() }

// Method selects a fracturing heuristic.
type Method string

const (
	// MethodMBF is the paper's method: graph-coloring-based approximate
	// fracturing followed by iterative shot refinement.
	MethodMBF Method = "mbf"
	// MethodMBFL is MethodMBF plus an L-shot matching pass: after
	// refinement, compatible rectangle pairs merge into single L-shaped
	// exposures via maximum matching, each pair pricing as one flash.
	// The pairs are reported in Result.LPairs; the pass never increases
	// the CD-violation count relative to MethodMBF's refined solution.
	MethodMBFL Method = "mbf-l"
	// MethodGSC is the greedy set cover baseline.
	MethodGSC Method = "gsc"
	// MethodMP is the matching pursuit baseline.
	MethodMP Method = "mp"
	// MethodProtoEDA is the commercial-prototype substitute baseline:
	// coarse rectilinear partition plus model-based cleanup.
	MethodProtoEDA Method = "proto-eda"
	// MethodPartition is conventional non-model-based fracturing: a
	// minimum rectangle partition of the rasterized target with no
	// overlap and no proximity compensation.
	MethodPartition Method = "partition"
	// MethodLShape is L-shape fracturing (the paper's reference [20]):
	// a rectangle partition whose pieces pair into single-shot L's. The
	// reported shots are the rectangle decomposition of the L-shots.
	MethodLShape Method = "lshape"
)

// Methods lists all registered fracturing methods, sorted by name. New
// heuristics appear here by registering with the engine's solver
// registry in their package init — the facade has no method switch.
func Methods() []Method {
	names := engine.Names()
	out := make([]Method, len(names))
	for i, n := range names {
		out[i] = Method(n)
	}
	return out
}

// Options tune a fracturing run. The zero value (or a nil pointer)
// selects the paper's settings for every method.
type Options struct {
	// MaxIterations bounds the refinement loop of MethodMBF and the
	// shot caps of the baselines. 0 selects each method's default.
	MaxIterations int
	// ColoringOrder selects the greedy coloring order for MethodMBF:
	// "sequential" (paper default), "welsh-powell" or "smallest-last".
	ColoringOrder string
	// SkipRefinement stops MethodMBF after the coloring stage.
	SkipRefinement bool
	// Workers caps the number of independent regions of a multi-target
	// instance solved concurrently; 0 selects GOMAXPROCS. Inside a
	// FractureBatch run, region- and batch-level concurrency share the
	// batch's bounded pool instead. Workers never changes the solution:
	// parallel and sequential runs return byte-identical shot lists, so
	// it is excluded from the shape-cache key.
	Workers int
}

// coloringOrder maps the option string to the graph coloring order.
func (o *Options) coloringOrder() (graphx.Order, error) {
	if o == nil || o.ColoringOrder == "" || o.ColoringOrder == "sequential" {
		return graphx.Sequential, nil
	}
	switch o.ColoringOrder {
	case "welsh-powell":
		return graphx.WelshPowell, nil
	case "smallest-last":
		return graphx.SmallestLast, nil
	}
	return graphx.Sequential, fmt.Errorf("maskfrac: unknown coloring order %q", o.ColoringOrder)
}

// Problem is a prepared fracturing instance: the target shape sampled
// at the pixel pitch with every pixel classified as interior (Pon),
// exterior (Poff) or boundary band (don't-care).
type Problem struct {
	p *cover.Problem
}

// NewProblem samples and classifies a target shape. The grid covers
// the shape's bounding box plus the proximity kernel support.
func NewProblem(target Polygon, params Params) (*Problem, error) {
	p, err := cover.NewProblem(target, params)
	if err != nil {
		return nil, err
	}
	return &Problem{p: p}, nil
}

// Target returns the problem's target polygon.
func (pr *Problem) Target() Polygon { return pr.p.Target }

// Params returns the problem's parameters.
func (pr *Problem) Params() Params { return pr.p.Params }

// PixelCounts returns |Pon| and |Poff| of the sampled instance.
func (pr *Problem) PixelCounts() (on, off int) { return pr.p.OnCount(), pr.p.OffCount() }

// Result is the outcome of a fracturing run.
type Result struct {
	Method Method
	Shots  []Shot
	// LPairs lists L-shot pairs of Shots as {i, j} index pairs with
	// i < j: each pair is two rectangles written as one L-shaped flash
	// sharing one dose (MethodMBFL). Nil for rectangle-only methods.
	LPairs   [][2]int
	FailOn   int           // failing interior pixels (dose below ρ)
	FailOff  int           // failing exterior pixels (dose at/above ρ)
	Cost     float64       // Σ|Itot−ρ| over failing pixels (paper Eq. 5)
	Regions  int           // independent regions the engine solved (1 for a single shape)
	Runtime  time.Duration // wall time of the solver, excluding scoring
	EvalTime time.Duration // wall time of the Evaluate scoring pass

	// Stage holds coloring-stage statistics for MethodMBF runs, nil
	// otherwise.
	Stage *StageInfo
}

// StageInfo mirrors the approximate-fracturing statistics of the
// paper's method (used to reproduce Figs 1 and 3).
type StageInfo struct {
	VerticesIn   int     // target polygon vertices
	VerticesRDP  int     // vertices after boundary approximation
	CornersRaw   int     // corner points before clustering
	Corners      int     // corner points after clustering
	GraphEdges   int     // compatibility graph edges
	Colors       int     // colors used on the inverse graph
	Lth          float64 // longest writable 45° segment
	InitialShots int     // shots after the coloring stage
	Iterations   int     // refinement iterations run

	// L-shot matching pass statistics (zero unless MethodMBFL).
	LCandidates int // L-compatible shot pairs found
	LMatched    int // pairs selected by maximum matching
	LPairs      int // pairs kept after repair (== flashes saved)
}

// ShotCount returns the number of rectangle entries in Shots. Each
// L-shot pair counts as two entries here; see FlashCount for the
// number of e-beam flashes the mask writer fires.
func (r *Result) ShotCount() int { return len(r.Shots) }

// FlashCount returns the number of e-beam flashes the solution writes
// in: every L-shot pair is one flash, every unpaired rectangle is one.
// Equal to ShotCount for rectangle-only methods.
func (r *Result) FlashCount() int { return len(r.Shots) - len(r.LPairs) }

// FailingPixels returns the total number of CD-violating pixels.
func (r *Result) FailingPixels() int { return r.FailOn + r.FailOff }

// Feasible reports whether the solution satisfies every constraint.
func (r *Result) Feasible() bool { return r.FailingPixels() == 0 }

// Fracture runs the selected method on the problem. opt may be nil for
// the paper's defaults.
func (pr *Problem) Fracture(m Method, opt *Options) (*Result, error) {
	return pr.FractureCtx(context.Background(), m, opt)
}

// FractureCtx is Fracture with telemetry plumbed through the context:
// when ctx carries a trace (telemetry.WithTrace), the solver and
// scoring pass record spans — the engine records its plan, per-region
// and stitch phases, and MethodMBF additionally records its
// corner-extraction, coloring and per-refinement-iteration phases.
// Without a trace the instrumentation costs one context lookup.
//
// Multi-target instances run through the decompose–solve–stitch engine:
// targets farther apart than the proximity interaction range are solved
// as independent regions, concurrently up to Options.Workers, and the
// merged result is byte-identical to the sequential run.
func (pr *Problem) FractureCtx(ctx context.Context, m Method, opt *Options) (*Result, error) {
	start := time.Now()
	res := &Result{Method: m}
	order, err := opt.coloringOrder()
	if err != nil {
		return nil, err
	}
	cfg := engine.Config{
		Method:  string(m),
		Options: engine.Options{Order: order},
	}
	if opt != nil {
		cfg.Options.MaxIterations = opt.MaxIterations
		cfg.Options.SkipRefinement = opt.SkipRefinement
		cfg.Workers = opt.Workers
	}
	solveCtx, solveSpan := telemetry.StartSpan(ctx, "solve")
	solveSpan.Set("method", string(m))
	run, err := engine.Solve(solveCtx, pr.p, cfg)
	if err != nil {
		solveSpan.End()
		return nil, fmt.Errorf("maskfrac: %w", err)
	}
	res.Shots = run.Shots
	res.LPairs = run.Pairs
	res.Regions = len(run.Regions)
	res.Stage = foldStages(run)
	res.Runtime = time.Since(start)
	solveSpan.Set("shots", res.ShotCount())
	solveSpan.Set("regions", res.Regions)
	solveSpan.End()
	evalStart := time.Now()
	_, evalSpan := telemetry.StartSpan(ctx, "evaluate")
	st := pr.p.EvaluatePaired(res.Shots, res.LPairs)
	res.EvalTime = time.Since(evalStart)
	res.FailOn = st.FailOn
	res.FailOff = st.FailOff
	res.Cost = st.Cost
	evalSpan.Set("fail_on", st.FailOn)
	evalSpan.Set("fail_off", st.FailOff)
	evalSpan.End()
	return res, nil
}

// foldStages folds the per-region MBF stage statistics of an engine run
// into one StageInfo; nil when no region solver reported any. Counts
// are summed across regions, Lth is shared, and Iterations reports the
// deepest region.
func foldStages(run *engine.Result) *StageInfo {
	var agg *StageInfo
	for _, reg := range run.Regions {
		info, ok := reg.Stage.(*mbf.StageInfo)
		if !ok || info == nil {
			continue
		}
		if agg == nil {
			agg = &StageInfo{Lth: info.Lth}
		}
		agg.VerticesIn += info.VerticesIn
		agg.VerticesRDP += info.VerticesRDP
		agg.CornersRaw += info.CornersRaw
		agg.Corners += info.Corners
		agg.GraphEdges += info.GraphEdges
		agg.Colors += info.Colors
		agg.InitialShots += info.InitialShots
		agg.Iterations = max(agg.Iterations, info.RefineIterations)
		agg.LCandidates += info.LCandidates
		agg.LMatched += info.LMatched
		agg.LPairs += info.LPairs
	}
	return agg
}

// Evaluate scores an arbitrary shot list against the problem's
// constraints.
func (pr *Problem) Evaluate(shots []Shot) (failOn, failOff int, cost float64) {
	st := pr.p.Evaluate(shots)
	return st.FailOn, st.FailOff, st.Cost
}

// DoseAt returns the total blurred dose the shot list delivers at a
// point.
func (pr *Problem) DoseAt(shots []Shot, at Point) float64 {
	total := 0.0
	for _, s := range shots {
		total += pr.p.Model.ShotIntensity(s, at)
	}
	return total
}

// Bounds returns heuristic lower/upper shot-count bounds for the
// target (the Table 2 LB/UB substitution; see DESIGN.md).
func (pr *Problem) Bounds() (lower, upper int) {
	b := bounds.Compute(pr.p)
	return b.Lower, b.Upper
}

// Lth returns the longest 45° segment writable by a single shot corner
// under the problem's proximity model and CD tolerance (paper Fig 2).
func (pr *Problem) Lth() float64 {
	return pr.p.Model.Lth(pr.p.Params.Rho, pr.p.Params.Gamma)
}

// NewMultiProblem samples a group of disjoint target shapes — typically
// a main feature plus its sub-resolution assist features (SRAFs) — into
// one fracturing instance. The shapes share the dose budget and are
// fractured together, as on a real mask where assist features sit
// within the proximity range of the feature they assist.
func NewMultiProblem(targets []Polygon, params Params) (*Problem, error) {
	p, err := cover.NewMultiProblem(targets, params)
	if err != nil {
		return nil, err
	}
	return &Problem{p: p}, nil
}

// Targets returns all target shapes of the instance.
func (pr *Problem) Targets() []Polygon { return pr.p.Targets }

// SRAFCluster returns a generated benchmark instance of a main feature
// plus n assist bars (main shape first).
func SRAFCluster(seed int64, bars int) []Polygon {
	return shapegen.SRAFCluster(seed, bars)
}
