// Package maskfrac is a model-based mask fracturing library: it covers
// mask target shapes with minimal sets of overlapping variable-shaped
// e-beam shots while compensating the e-beam proximity effect, so that
// the printed dose satisfies CD constraints everywhere.
//
// It reproduces "Effective Model-Based Mask Fracturing for Mask Cost
// Reduction" (Kagalwalla & Gupta, DAC 2015): the paper's graph-coloring
// + iterative-refinement method, the GSC / MP / PROTO-EDA baselines it
// benchmarks against, conventional rectilinear partition fracturing,
// benchmark shape generators, shot-count bounds, a mask write cost
// model, and the experiment harness regenerating the paper's tables.
//
// Quick start:
//
//	target := maskfrac.Polygon{{0, 0}, {100, 0}, {100, 100}, {0, 100}}
//	prob, err := maskfrac.NewProblem(target, maskfrac.DefaultParams())
//	res, err := prob.Fracture(maskfrac.MethodMBF, nil)
//	// res.Shots is the e-beam shot list; res.Feasible() reports CD cleanliness.
package maskfrac

import (
	"context"
	"fmt"
	"time"

	"maskfrac/internal/bounds"
	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/gsc"
	"maskfrac/internal/fracture/mbf"
	"maskfrac/internal/fracture/mp"
	"maskfrac/internal/fracture/partition"
	"maskfrac/internal/fracture/protoeda"
	"maskfrac/internal/geom"
	"maskfrac/internal/graphx"
	"maskfrac/internal/shapegen"
	"maskfrac/internal/telemetry"
)

// Point is a planar point in nanometers.
type Point = geom.Point

// Shot is an axis-parallel rectangular e-beam shot, in nanometers.
type Shot = geom.Rect

// Polygon is a mask target shape: a simple polygon without a repeated
// closing vertex. ILT shapes are polygons with many short segments.
type Polygon = geom.Polygon

// Params are the fracturing parameters (blur σ, CD tolerance γ, dose
// threshold ρ, pixel size Δp and minimum shot size Lmin).
type Params = cover.Params

// DefaultParams returns the parameter set of the paper's experiments:
// σ = 6.25 nm, γ = 2 nm, ρ = 0.5, Δp = 1 nm, Lmin = 8 nm.
func DefaultParams() Params { return cover.DefaultParams() }

// Method selects a fracturing heuristic.
type Method string

const (
	// MethodMBF is the paper's method: graph-coloring-based approximate
	// fracturing followed by iterative shot refinement.
	MethodMBF Method = "mbf"
	// MethodGSC is the greedy set cover baseline.
	MethodGSC Method = "gsc"
	// MethodMP is the matching pursuit baseline.
	MethodMP Method = "mp"
	// MethodProtoEDA is the commercial-prototype substitute baseline:
	// coarse rectilinear partition plus model-based cleanup.
	MethodProtoEDA Method = "proto-eda"
	// MethodPartition is conventional non-model-based fracturing: a
	// minimum rectangle partition of the rasterized target with no
	// overlap and no proximity compensation.
	MethodPartition Method = "partition"
)

// Methods lists all supported fracturing methods.
func Methods() []Method {
	return []Method{MethodMBF, MethodGSC, MethodMP, MethodProtoEDA, MethodPartition}
}

// Options tune a fracturing run. The zero value (or a nil pointer)
// selects the paper's settings for every method.
type Options struct {
	// MaxIterations bounds the refinement loop of MethodMBF and the
	// shot caps of the baselines. 0 selects each method's default.
	MaxIterations int
	// ColoringOrder selects the greedy coloring order for MethodMBF:
	// "sequential" (paper default), "welsh-powell" or "smallest-last".
	ColoringOrder string
	// SkipRefinement stops MethodMBF after the coloring stage.
	SkipRefinement bool
}

// coloringOrder maps the option string to the graph coloring order.
func (o *Options) coloringOrder() (graphx.Order, error) {
	if o == nil || o.ColoringOrder == "" || o.ColoringOrder == "sequential" {
		return graphx.Sequential, nil
	}
	switch o.ColoringOrder {
	case "welsh-powell":
		return graphx.WelshPowell, nil
	case "smallest-last":
		return graphx.SmallestLast, nil
	}
	return graphx.Sequential, fmt.Errorf("maskfrac: unknown coloring order %q", o.ColoringOrder)
}

// Problem is a prepared fracturing instance: the target shape sampled
// at the pixel pitch with every pixel classified as interior (Pon),
// exterior (Poff) or boundary band (don't-care).
type Problem struct {
	p *cover.Problem
}

// NewProblem samples and classifies a target shape. The grid covers
// the shape's bounding box plus the proximity kernel support.
func NewProblem(target Polygon, params Params) (*Problem, error) {
	p, err := cover.NewProblem(target, params)
	if err != nil {
		return nil, err
	}
	return &Problem{p: p}, nil
}

// Target returns the problem's target polygon.
func (pr *Problem) Target() Polygon { return pr.p.Target }

// Params returns the problem's parameters.
func (pr *Problem) Params() Params { return pr.p.Params }

// PixelCounts returns |Pon| and |Poff| of the sampled instance.
func (pr *Problem) PixelCounts() (on, off int) { return pr.p.OnCount(), pr.p.OffCount() }

// Result is the outcome of a fracturing run.
type Result struct {
	Method   Method
	Shots    []Shot
	FailOn   int           // failing interior pixels (dose below ρ)
	FailOff  int           // failing exterior pixels (dose at/above ρ)
	Cost     float64       // Σ|Itot−ρ| over failing pixels (paper Eq. 5)
	Runtime  time.Duration // wall time of the solver, excluding scoring
	EvalTime time.Duration // wall time of the Evaluate scoring pass

	// Stage holds coloring-stage statistics for MethodMBF runs, nil
	// otherwise.
	Stage *StageInfo
}

// StageInfo mirrors the approximate-fracturing statistics of the
// paper's method (used to reproduce Figs 1 and 3).
type StageInfo struct {
	VerticesIn   int     // target polygon vertices
	VerticesRDP  int     // vertices after boundary approximation
	CornersRaw   int     // corner points before clustering
	Corners      int     // corner points after clustering
	GraphEdges   int     // compatibility graph edges
	Colors       int     // colors used on the inverse graph
	Lth          float64 // longest writable 45° segment
	InitialShots int     // shots after the coloring stage
	Iterations   int     // refinement iterations run
}

// ShotCount returns the number of shots.
func (r *Result) ShotCount() int { return len(r.Shots) }

// FailingPixels returns the total number of CD-violating pixels.
func (r *Result) FailingPixels() int { return r.FailOn + r.FailOff }

// Feasible reports whether the solution satisfies every constraint.
func (r *Result) Feasible() bool { return r.FailingPixels() == 0 }

// Fracture runs the selected method on the problem. opt may be nil for
// the paper's defaults.
func (pr *Problem) Fracture(m Method, opt *Options) (*Result, error) {
	return pr.FractureCtx(context.Background(), m, opt)
}

// FractureCtx is Fracture with telemetry plumbed through the context:
// when ctx carries a trace (telemetry.WithTrace), the solver and
// scoring pass record spans — MethodMBF additionally records its
// corner-extraction, coloring and per-refinement-iteration phases.
// Without a trace the instrumentation costs one context lookup.
func (pr *Problem) FractureCtx(ctx context.Context, m Method, opt *Options) (*Result, error) {
	start := time.Now()
	res := &Result{Method: m}
	maxIter := 0
	if opt != nil {
		maxIter = opt.MaxIterations
	}
	solveCtx, solveSpan := telemetry.StartSpan(ctx, "solve")
	solveSpan.Set("method", string(m))
	switch m {
	case MethodMBF:
		order, err := opt.coloringOrder()
		if err != nil {
			return nil, err
		}
		o := mbf.Options{Nmax: maxIter, Order: order}
		if opt != nil {
			o.SkipRefinement = opt.SkipRefinement
		}
		r := mbf.FractureCtx(solveCtx, pr.p, o)
		res.Shots = r.Shots
		res.Stage = &StageInfo{
			VerticesIn:   r.Info.VerticesIn,
			VerticesRDP:  r.Info.VerticesRDP,
			CornersRaw:   r.Info.CornersRaw,
			Corners:      r.Info.Corners,
			GraphEdges:   r.Info.GraphEdges,
			Colors:       r.Info.Colors,
			Lth:          r.Info.Lth,
			InitialShots: r.Info.InitialShots,
			Iterations:   r.Info.RefineIterations,
		}
	case MethodGSC:
		r := gsc.Fracture(pr.p, gsc.Options{MaxShots: maxIter})
		res.Shots = r.Shots
	case MethodMP:
		r := mp.Fracture(pr.p, mp.Options{MaxShots: maxIter})
		res.Shots = r.Shots
	case MethodProtoEDA:
		r := protoeda.Fracture(pr.p, protoeda.Options{CleanupIters: maxIter})
		res.Shots = r.Shots
	case MethodPartition:
		shots, err := pr.partitionShots()
		if err != nil {
			return nil, err
		}
		res.Shots = shots
	default:
		return nil, fmt.Errorf("maskfrac: unknown method %q", m)
	}
	res.Runtime = time.Since(start)
	solveSpan.Set("shots", res.ShotCount())
	solveSpan.End()
	evalStart := time.Now()
	_, evalSpan := telemetry.StartSpan(ctx, "evaluate")
	st := pr.p.Evaluate(res.Shots)
	res.EvalTime = time.Since(evalStart)
	res.FailOn = st.FailOn
	res.FailOff = st.FailOff
	res.Cost = st.Cost
	evalSpan.Set("fail_on", st.FailOn)
	evalSpan.Set("fail_off", st.FailOff)
	evalSpan.End()
	return res, nil
}

// partitionShots runs conventional partition fracturing on the target
// (rectilinearized when the target is curvilinear).
func (pr *Problem) partitionShots() ([]Shot, error) {
	target := pr.p.Target
	if target.IsRectilinear() {
		return partition.Minimum(target)
	}
	// rectilinearize at the pixel pitch
	pg, err := rectilinearize(pr.p)
	if err != nil {
		return nil, err
	}
	return partition.Minimum(pg)
}

// Evaluate scores an arbitrary shot list against the problem's
// constraints.
func (pr *Problem) Evaluate(shots []Shot) (failOn, failOff int, cost float64) {
	st := pr.p.Evaluate(shots)
	return st.FailOn, st.FailOff, st.Cost
}

// DoseAt returns the total blurred dose the shot list delivers at a
// point.
func (pr *Problem) DoseAt(shots []Shot, at Point) float64 {
	total := 0.0
	for _, s := range shots {
		total += pr.p.Model.ShotIntensity(s, at)
	}
	return total
}

// Bounds returns heuristic lower/upper shot-count bounds for the
// target (the Table 2 LB/UB substitution; see DESIGN.md).
func (pr *Problem) Bounds() (lower, upper int) {
	b := bounds.Compute(pr.p)
	return b.Lower, b.Upper
}

// Lth returns the longest 45° segment writable by a single shot corner
// under the problem's proximity model and CD tolerance (paper Fig 2).
func (pr *Problem) Lth() float64 {
	return pr.p.Model.Lth(pr.p.Params.Rho, pr.p.Params.Gamma)
}

// NewMultiProblem samples a group of disjoint target shapes — typically
// a main feature plus its sub-resolution assist features (SRAFs) — into
// one fracturing instance. The shapes share the dose budget and are
// fractured together, as on a real mask where assist features sit
// within the proximity range of the feature they assist.
func NewMultiProblem(targets []Polygon, params Params) (*Problem, error) {
	p, err := cover.NewMultiProblem(targets, params)
	if err != nil {
		return nil, err
	}
	return &Problem{p: p}, nil
}

// Targets returns all target shapes of the instance.
func (pr *Problem) Targets() []Polygon { return pr.p.Targets }

// SRAFCluster returns a generated benchmark instance of a main feature
// plus n assist bars (main shape first).
func SRAFCluster(seed int64, bars int) []Polygon {
	return shapegen.SRAFCluster(seed, bars)
}
