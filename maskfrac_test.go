package maskfrac

import (
	"reflect"
	"strings"
	"testing"
)

func square(side float64) Polygon {
	return Polygon{{X: 0, Y: 0}, {X: side, Y: 0}, {X: side, Y: side}, {X: 0, Y: side}}
}

func TestNewProblemErrors(t *testing.T) {
	if _, err := NewProblem(Polygon{{X: 0, Y: 0}}, DefaultParams()); err == nil {
		t.Error("degenerate target accepted")
	}
	p := DefaultParams()
	p.Sigma = -1
	if _, err := NewProblem(square(50), p); err == nil {
		t.Error("bad params accepted")
	}
}

func TestProblemAccessors(t *testing.T) {
	prob, err := NewProblem(square(50), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(prob.Target()) != 4 {
		t.Error("Target lost vertices")
	}
	if prob.Params().Sigma != 6.25 {
		t.Error("Params lost values")
	}
	on, off := prob.PixelCounts()
	if on == 0 || off == 0 {
		t.Error("empty pixel classes")
	}
	if lth := prob.Lth(); lth < 10 || lth > 20 {
		t.Errorf("Lth = %v", lth)
	}
}

func TestFractureAllMethods(t *testing.T) {
	prob, err := NewProblem(square(80), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		res, err := prob.Fracture(m, nil)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Method != m {
			t.Errorf("%s: result method %s", m, res.Method)
		}
		if res.ShotCount() == 0 {
			t.Errorf("%s: no shots", m)
		}
		if res.Runtime <= 0 {
			t.Errorf("%s: no runtime", m)
		}
		// a plain square must be nearly clean for every method
		// (partition cannot fix corner rounding, allow a few pixels)
		if res.FailingPixels() > 8 {
			t.Errorf("%s: %d failing pixels on a square", m, res.FailingPixels())
		}
	}
}

func TestFractureUnknownMethod(t *testing.T) {
	prob, _ := NewProblem(square(50), DefaultParams())
	if _, err := prob.Fracture(Method("bogus"), nil); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestFractureMBFStageInfo(t *testing.T) {
	prob, _ := NewProblem(square(80), DefaultParams())
	res, err := prob.Fracture(MethodMBF, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage == nil {
		t.Fatal("no stage info for MBF")
	}
	if res.Stage.Corners == 0 || res.Stage.Colors == 0 || res.Stage.Lth <= 0 {
		t.Errorf("stage info empty: %+v", res.Stage)
	}
	gsc, err := prob.Fracture(MethodGSC, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gsc.Stage != nil {
		t.Error("stage info present for non-MBF method")
	}
}

func TestFractureOptions(t *testing.T) {
	prob, _ := NewProblem(square(80), DefaultParams())
	res, err := prob.Fracture(MethodMBF, &Options{SkipRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage.Iterations != 0 {
		t.Error("refinement ran despite SkipRefinement")
	}
	for _, order := range []string{"sequential", "welsh-powell", "smallest-last"} {
		if _, err := prob.Fracture(MethodMBF, &Options{ColoringOrder: order, SkipRefinement: true}); err != nil {
			t.Errorf("order %s: %v", order, err)
		}
	}
	if _, err := prob.Fracture(MethodMBF, &Options{ColoringOrder: "bogus"}); err == nil {
		t.Error("bad coloring order accepted")
	}
}

func TestEvaluateAndDose(t *testing.T) {
	prob, _ := NewProblem(square(80), DefaultParams())
	full := Shot{X0: -0.5, Y0: -0.5, X1: 80.5, Y1: 80.5}
	failOn, failOff, cost := prob.Evaluate([]Shot{full})
	if failOn != 0 || failOff != 0 || cost != 0 {
		t.Errorf("full shot: %d %d %v", failOn, failOff, cost)
	}
	center := prob.DoseAt([]Shot{full}, Point{X: 40, Y: 40})
	if center < 0.99 {
		t.Errorf("center dose = %v", center)
	}
	outside := prob.DoseAt([]Shot{full}, Point{X: 200, Y: 200})
	if outside != 0 {
		t.Errorf("far dose = %v", outside)
	}
}

func TestBoundsSane(t *testing.T) {
	prob, _ := NewProblem(square(80), DefaultParams())
	lb, ub := prob.Bounds()
	if lb < 1 || ub < 1 {
		t.Errorf("bounds %d/%d", lb, ub)
	}
	if ub != 1 {
		t.Errorf("square UB = %d, want 1", ub)
	}
}

func TestSuites(t *testing.T) {
	ilt := ILTSuite()
	if len(ilt) != 10 {
		t.Fatalf("ILT suite size %d", len(ilt))
	}
	for _, b := range ilt {
		if b.Optimal != 0 {
			t.Errorf("%s: ILT shape has optimal", b.Name)
		}
		if len(b.Target) < 8 {
			t.Errorf("%s: trivial shape", b.Name)
		}
	}
	if testing.Short() {
		t.Skip("generated suite in -short mode")
	}
	gen := GeneratedSuite(DefaultParams())
	if len(gen) != 10 {
		t.Fatalf("generated suite size %d", len(gen))
	}
	for _, b := range gen {
		if b.Optimal <= 0 {
			t.Errorf("%s: missing optimal", b.Name)
		}
	}
}

func TestRunSuiteAndFormat(t *testing.T) {
	params := DefaultParams()
	benchmarks := []Benchmark{
		{Name: "sq", Target: square(80), Optimal: 1},
	}
	methods := []Method{MethodProtoEDA, MethodGSC}
	rows, err := RunSuite(benchmarks, params, methods)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	table := FormatTable(rows, methods, true)
	for _, frag := range []string{"sq", "proto-eda", "gsc", "Sum norm."} {
		if !strings.Contains(table, frag) {
			t.Errorf("table missing %q:\n%s", frag, table)
		}
	}
	table2 := FormatTable(rows, methods, false)
	if !strings.Contains(table2, "LB/UB") {
		t.Error("table 2 layout missing LB/UB")
	}
	if got := TotalShots(rows, MethodGSC); got == 0 {
		t.Error("TotalShots = 0")
	}
	if rts := MethodRuntimes(rows); len(rts) != 2 {
		t.Errorf("runtimes = %v", rts)
	}
	norm := NormalizedShotSum(rows, MethodGSC, true)
	if norm <= 0 {
		t.Errorf("normalized sum = %v", norm)
	}
}

func TestNormalizedShotSumSkipsMissingRef(t *testing.T) {
	rows := []Row{
		{Shape: "a", Method: MethodMBF, Shots: 4, Optimal: 2},
		{Shape: "b", Method: MethodMBF, Shots: 9, Optimal: 0}, // skipped
	}
	if got := NormalizedShotSum(rows, MethodMBF, true); got != 2 {
		t.Errorf("normalized = %v, want 2", got)
	}
}

func TestMultiProblemFacade(t *testing.T) {
	cluster := SRAFCluster(3, 4)
	if len(cluster) != 5 {
		t.Fatalf("cluster size = %d", len(cluster))
	}
	prob, err := NewMultiProblem(cluster, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(prob.Targets()) != 5 {
		t.Errorf("targets = %d", len(prob.Targets()))
	}
	res, err := prob.Fracture(MethodProtoEDA, nil)
	if err != nil {
		t.Fatal(err)
	}
	// one shot per shape is the natural solution scale
	if res.ShotCount() < 5 || res.ShotCount() > 10 {
		t.Errorf("SRAF cluster used %d shots", res.ShotCount())
	}
	if res.FailingPixels() > 10 {
		t.Errorf("SRAF cluster left %d failures", res.FailingPixels())
	}
	if _, err := NewMultiProblem(nil, DefaultParams()); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestBackscatterFacade(t *testing.T) {
	params := DefaultParams()
	params.Beta = 25
	params.Eta = 0.3
	prob, err := NewProblem(square(80), params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prob.Fracture(MethodProtoEDA, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShotCount() == 0 {
		t.Error("no shots under backscatter model")
	}
	// dose far outside is non-zero under backscatter
	full := Shot{X0: 0, Y0: 0, X1: 80, Y1: 80}
	if d := prob.DoseAt([]Shot{full}, Point{X: -40, Y: 40}); d <= 0 {
		t.Errorf("backscatter tail dose = %v", d)
	}
}

// TestFractureMultiRegionDeterminism is the facade-level determinism
// guard: a four-cluster instance solved with 1 and 4 workers produces
// byte-identical shot lists and identical evaluation results, because
// the engine stitches per-region solutions in region index order
// regardless of goroutine completion order.
func TestFractureMultiRegionDeterminism(t *testing.T) {
	var targets []Polygon
	offsets := []Point{{X: 0, Y: 0}, {X: 600, Y: 0}, {X: 0, Y: 600}, {X: 600, Y: 600}}
	for i, off := range offsets {
		for _, p := range SRAFCluster(int64(i+1), 1) {
			targets = append(targets, p.Translate(off))
		}
	}
	prob, err := NewMultiProblem(targets, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	seq, err := prob.Fracture(MethodMBF, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := prob.Fracture(MethodMBF, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Regions != 4 || par.Regions != 4 {
		t.Fatalf("regions = %d/%d, want 4", seq.Regions, par.Regions)
	}
	if !reflect.DeepEqual(seq.Shots, par.Shots) {
		t.Fatal("workers=1 and workers=4 shot lists differ")
	}
	if seq.FailOn != par.FailOn || seq.FailOff != par.FailOff || seq.Cost != par.Cost {
		t.Errorf("evaluation differs: on=%d/%d off=%d/%d cost=%v/%v",
			seq.FailOn, par.FailOn, seq.FailOff, par.FailOff, seq.Cost, par.Cost)
	}
	// the aggregated MBF stage info still reports the whole instance
	if seq.Stage == nil || seq.Stage.InitialShots == 0 {
		t.Errorf("stage info lost across regions: %+v", seq.Stage)
	}
}
