package maskfrac

import (
	"math/rand"
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/mbf"
	"maskfrac/internal/shapegen"
)

// TestIntegrationILTClip runs the full paper pipeline end to end on one
// ILT clip and cross-checks every invariant the method promises.
func TestIntegrationILTClip(t *testing.T) {
	clip := ILTSuite()[0]
	prob, err := NewProblem(clip.Target, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := prob.Fracture(MethodMBF, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Errorf("ILT-1 not feasible: on=%d off=%d", res.FailOn, res.FailOff)
	}
	lb, ub := prob.Bounds()
	if res.ShotCount() > ub {
		t.Errorf("method (%d shots) worse than the conventional upper bound (%d)", res.ShotCount(), ub)
	}
	if lb < 1 {
		t.Errorf("lower bound %d", lb)
	}
	// every shot satisfies the tool constraint
	for _, s := range res.Shots {
		if s.W() < DefaultParams().Lmin-1e-9 || s.H() < DefaultParams().Lmin-1e-9 {
			t.Errorf("shot %v below minimum size", s)
		}
	}
	// re-evaluating the returned shots reproduces the reported stats
	failOn, failOff, _ := prob.Evaluate(res.Shots)
	if failOn != res.FailOn || failOff != res.FailOff {
		t.Errorf("stats mismatch: reported %d/%d, re-evaluated %d/%d",
			res.FailOn, res.FailOff, failOn, failOff)
	}
}

// TestIntegrationMethodsBeatNothing checks that on a certified-optimal
// generated shape no method reports fewer shots than the certificate
// while claiming feasibility.
func TestIntegrationCertificateRespected(t *testing.T) {
	if testing.Short() {
		t.Skip("generated shapes in -short mode")
	}
	params := DefaultParams()
	sh := shapegen.RGB(17, 5, params)
	if sh.Target == nil {
		t.Fatal("generation failed")
	}
	prob, err := NewProblem(sh.Target, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodGSC, MethodMP, MethodProtoEDA, MethodMBF} {
		res, err := prob.Fracture(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Feasible() && res.ShotCount() < sh.Known {
			t.Errorf("%s: feasible with %d shots below certified optimum %d",
				m, res.ShotCount(), sh.Known)
		}
	}
}

// TestIntegrationRandomBlobs fuzzes the paper's method over random
// blob shapes: it must always return legal shots and few violations.
func TestIntegrationRandomBlobs(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz in -short mode")
	}
	params := cover.DefaultParams()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		sh := shapegen.ILTShape(rng.Int63(), 2+rng.Intn(3))
		p, err := cover.NewProblem(sh.Target, params)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res := mbf.Fracture(p, mbf.Options{Nmax: 1200})
		for _, s := range res.Shots {
			if !p.MinSizeOK(s) {
				t.Errorf("trial %d: illegal shot %v", trial, s)
			}
		}
		total := p.OnCount() + p.OffCount()
		if res.Stats.Fail() > total/100 {
			t.Errorf("trial %d: %d of %d pixels failing", trial, res.Stats.Fail(), total)
		}
	}
}

// TestIntegrationWriteReadRoundTrip exercises the full benchgen →
// maskio → fracture path the CLIs use.
func TestIntegrationSuiteStability(t *testing.T) {
	// the suite must be identical across calls (benchmarks depend on it)
	a := ILTSuite()
	b := ILTSuite()
	for i := range a {
		if len(a[i].Target) != len(b[i].Target) {
			t.Fatalf("suite not deterministic at %s", a[i].Name)
		}
		for j := range a[i].Target {
			if a[i].Target[j] != b[i].Target[j] {
				t.Fatalf("suite vertex drift at %s[%d]", a[i].Name, j)
			}
		}
	}
}
